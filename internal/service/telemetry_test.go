package service_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"phasemark/internal/service"
)

var hexRe = regexp.MustCompile(`^[0-9a-f]+$`)

// postRaw posts a body and returns the full response (caller closes).
func postRaw(t *testing.T, url string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestTraceparentRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	body := []byte(`{"workload":"` + itWorkload + `"}`)

	// A valid incoming traceparent: the response joins the trace (same
	// trace-id) under a fresh span-id.
	in := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	resp := postRaw(t, ts.URL+service.EndpointProfile, body, map[string]string{"Traceparent": in})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	out := resp.Header.Get("Traceparent")
	parts := strings.Split(out, "-")
	if len(parts) != 4 || parts[1] != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("response traceparent %q does not continue the incoming trace", out)
	}
	if parts[2] == "b7ad6b7169203331" || len(parts[2]) != 16 || !hexRe.MatchString(parts[2]) {
		t.Errorf("response span-id %q must be fresh 16-digit hex", parts[2])
	}
	if id := resp.Header.Get("X-Request-Id"); len(id) != 16 || !hexRe.MatchString(id) {
		t.Errorf("X-Request-Id = %q, want 16 hex digits", id)
	}

	// A garbage traceparent: the service starts its own trace.
	resp = postRaw(t, ts.URL+service.EndpointProfile, body, map[string]string{"Traceparent": "not-a-trace"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	parts = strings.Split(resp.Header.Get("Traceparent"), "-")
	if len(parts) != 4 || len(parts[1]) != 32 || !hexRe.MatchString(parts[1]) {
		t.Errorf("fresh traceparent malformed: %q", resp.Header.Get("Traceparent"))
	}
}

// TestRequestIDOnErrors pins the contract the CI smoke relies on: every
// response carries X-Request-Id, including validation errors (400),
// saturation sheds (429), and draining rejections (503).
func TestRequestIDOnErrors(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{Workers: 1, Queue: 0})

	resp := postRaw(t, ts.URL+service.EndpointProfile, []byte(`{"workload":"nope"}`), nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || resp.Header.Get("X-Request-Id") == "" {
		t.Errorf("400 response: status %d, request id %q", resp.StatusCode, resp.Header.Get("X-Request-Id"))
	}

	// Saturate the 1-worker/0-queue gate with concurrent cold computes
	// until one response sheds with 429.
	body := []byte(`{"segment":{"workload":"` + itWorkload + `","fixed_len":100000}}`)
	var (
		mu    sync.Mutex
		id429 = "unset"
		saw   bool
	)
	deadline := time.Now().Add(30 * time.Second)
	for !saw && time.Now().Before(deadline) {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp := postRaw(t, ts.URL+service.EndpointCluster, body, nil)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					mu.Lock()
					saw, id429 = true, resp.Header.Get("X-Request-Id")
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	}
	if !saw {
		t.Fatal("never induced a 429 with 8 concurrent clients on a 1/0 gate")
	}
	if len(id429) != 16 || !hexRe.MatchString(id429) {
		t.Errorf("429 X-Request-Id = %q, want 16 hex digits", id429)
	}

	srv.StartDrain()
	resp = postRaw(t, ts.URL+service.EndpointProfile, []byte(`{"workload":"`+itWorkload+`"}`), nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("X-Request-Id") == "" {
		t.Errorf("503 response: status %d, request id %q", resp.StatusCode, resp.Header.Get("X-Request-Id"))
	}
}

// TestServerTimingStageBreakdown drives one cold and one hot request and
// checks the Server-Timing header tells them apart: the cold path shows a
// compute phase, the hot path a get and no compute — the invariant the
// stress suite's telemetry-consistency check enforces fleet-wide.
func TestServerTimingStageBreakdown(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	body := []byte(`{"workload":"` + itWorkload + `"}`)

	resp := postRaw(t, ts.URL+service.EndpointSelect, body, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	cold := resp.Header.Get("Server-Timing")
	if !strings.Contains(cold, "store.compute;dur=") || !strings.Contains(cold, "req.queue;dur=") {
		t.Errorf("cold Server-Timing %q lacks compute/queue stages", cold)
	}
	if !strings.Contains(cold, "pipeline.markers;dur=") {
		t.Errorf("cold Server-Timing %q lacks nested pipeline stages", cold)
	}

	resp = postRaw(t, ts.URL+service.EndpointSelect, body, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	hot := resp.Header.Get("Server-Timing")
	if resp.Header.Get("X-Phased-Cache") != "hit" {
		t.Fatalf("second request not a hit")
	}
	if strings.Contains(hot, "store.compute") {
		t.Errorf("hit Server-Timing %q shows a compute span", hot)
	}
	if !strings.Contains(hot, "store.get;dur=") {
		t.Errorf("hit Server-Timing %q lacks the get span", hot)
	}
}

// TestTraceQueryReturnsChromeTrace asks a pipeline endpoint for its
// one-shot per-request trace (?trace=1) and validates the Chrome
// trace_event payload: the full span tree, cache-outcome tags included.
func TestTraceQueryReturnsChromeTrace(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	body := []byte(`{"workload":"` + itWorkload + `"}`)

	resp := postRaw(t, ts.URL+service.EndpointProfile+"?trace=1", body, nil)
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace request: %d %s", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Phased-Trace") != "1" {
		t.Error("trace response missing X-Phased-Trace marker")
	}
	if resp.Header.Get("X-Phased-Cache") != "computed" {
		t.Errorf("trace response cache = %q", resp.Header.Get("X-Phased-Cache"))
	}
	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace body is not Chrome trace JSON: %v", err)
	}
	byName := map[string]map[string]string{}
	for _, ev := range trace.TraceEvents {
		byName[ev.Name] = ev.Args
	}
	for _, want := range []string{"http.v1.profile", "req.queue", "store.get", "store.compute", "store.write", "pipeline.prog", "pipeline.graph"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("trace lacks span %q (have %v)", want, keys(byName))
		}
	}
	if byName["pipeline.graph"]["cache"] != "computed" {
		t.Errorf("pipeline.graph args = %v, want cache=computed tag", byName["pipeline.graph"])
	}
	if byName["store.compute"]["parent"] != "http.v1.profile" {
		t.Errorf("store.compute parent = %q", byName["store.compute"]["parent"])
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestDebugSlowestWindow(t *testing.T) {
	_, ts := newTestServer(t, service.Config{SlowWindow: 8})
	body := []byte(`{"workload":"` + itWorkload + `"}`)
	for i := 0; i < 3; i++ {
		resp := postRaw(t, ts.URL+service.EndpointProfile, body, nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/debug/slowest")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Schema   string                `json:"schema"`
		Window   int                   `json:"window"`
		Requests []service.SlowRequest `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Schema != service.SchemaDebugSlowest || out.Window != 8 {
		t.Fatalf("debug payload shape: %q window %d", out.Schema, out.Window)
	}
	if len(out.Requests) != 3 {
		t.Fatalf("captured %d requests, want 3", len(out.Requests))
	}
	for i := 1; i < len(out.Requests); i++ {
		if out.Requests[i].DurNS > out.Requests[i-1].DurNS {
			t.Error("requests not sorted slowest-first")
		}
	}
	slowest := out.Requests[0]
	if slowest.Route != "v1.profile" || slowest.Cache != "computed" {
		t.Errorf("slowest = route %q cache %q, want the cold compute", slowest.Route, slowest.Cache)
	}
	if len(slowest.Span.Children) == 0 {
		t.Error("slowest request carries no span tree")
	}
	if slowest.ID == "" || slowest.TraceID == "" {
		t.Error("slowest request lacks identifiers")
	}

	// The debug index lists the endpoint.
	resp, err = http.Get(ts.URL + "/debug/")
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(idx), "/debug/slowest") {
		t.Errorf("debug index %s does not list /debug/slowest", idx)
	}
}

// TestMetricsContentNegotiation pins both representations of /metrics:
// JSON (default, correct Content-Type) and Prometheus text exposition
// (via ?format= and via Accept), with the RED route metrics present.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	body := []byte(`{"workload":"` + itWorkload + `"}`)
	resp := postRaw(t, ts.URL+service.EndpointSelect, body, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	jsonBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("JSON /metrics Content-Type = %q", ct)
	}
	if !json.Valid(jsonBody) {
		t.Error("default /metrics is not valid JSON")
	}

	resp, err = http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	promBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Prometheus /metrics Content-Type = %q", ct)
	}
	text := string(promBody)
	if !strings.Contains(text, "# TYPE store_compute_total counter") {
		t.Error("Prometheus exposition lacks store counters")
	}
	if !strings.Contains(text, "# TYPE http_v1_select_computed histogram") ||
		!strings.Contains(text, "http_v1_select_computed_count") {
		t.Error("Prometheus exposition lacks the per-route RED histograms")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Accept: text/plain negotiated %q", ct)
	}
}

func TestHealthzCarriesBuildInfo(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Status string            `json:"status"`
		Build  service.BuildInfo `json:"build"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" {
		t.Fatalf("status = %q", out.Status)
	}
	if out.Build.Version == "" || out.Build.Go == "" {
		t.Errorf("healthz build info incomplete: %+v", out.Build)
	}
	if s := out.Build.String(); !strings.Contains(s, "phased") || !strings.Contains(s, out.Build.Go) {
		t.Errorf("BuildInfo.String() = %q", s)
	}
}
