package store

import "sync"

// Memo is the in-memory counterpart of Store: a keyed, compute-once cache
// with singleflight semantics, generalizing the unexported cell pattern of
// internal/experiments for values that are too expensive (or impossible)
// to serialize to disk — compiled programs, profiled graphs, traced
// executions. The first requester of a key computes, concurrent
// requesters block on that one computation, and a successful value is
// cached for the Memo's lifetime. Errors are not cached: waiters of a
// failed flight share the leader's error, and the next requester retries.
//
// The same re-entrancy contract as Store.GetOrCompute applies: compute
// runs with no lock held, so it may Do other keys (or other Memos), but
// re-entering its own key deadlocks.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	done     bool
	val      V
	inflight *memoFlight[V]
}

type memoFlight[V any] struct {
	ch  chan struct{}
	val V
	err error
}

// Do returns the cached value for k, joins an in-flight computation, or
// runs compute itself.
func (m *Memo[K, V]) Do(k K, compute func() (V, error)) (V, error) {
	v, _, err := m.DoOutcome(k, compute)
	return v, err
}

// DoOutcome is Do plus the cache outcome, so request-scoped telemetry can
// tag each memoized pipeline stage the same way the artifact store tags
// whole responses: Hit (the value was already cached), Joined (waited on
// another caller's in-flight compute), or Computed (this caller ran
// compute).
func (m *Memo[K, V]) DoOutcome(k K, compute func() (V, error)) (V, Outcome, error) {
	m.mu.Lock()
	if m.m == nil {
		m.m = map[K]*memoEntry[V]{}
	}
	e := m.m[k]
	if e == nil {
		e = &memoEntry[V]{}
		m.m[k] = e
	}
	if e.done {
		v := e.val
		m.mu.Unlock()
		return v, Hit, nil
	}
	if f := e.inflight; f != nil {
		m.mu.Unlock()
		<-f.ch
		return f.val, Joined, f.err
	}
	f := &memoFlight[V]{ch: make(chan struct{})}
	e.inflight = f
	m.mu.Unlock()

	f.val, f.err = compute()

	m.mu.Lock()
	if f.err == nil {
		e.val, e.done = f.val, true
	}
	e.inflight = nil
	m.mu.Unlock()
	close(f.ch)
	return f.val, Computed, f.err
}

// Len reports how many keys hold a cached value.
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.m {
		if e.done {
			n++
		}
	}
	return n
}
