package store

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func testKey(s string) Key { return KeyOf("test/v1", []byte(s)) }

func TestKeyOfDomainSeparation(t *testing.T) {
	// The domain is length-prefixed, so moving bytes between domain and
	// body must change the key.
	a := KeyOf("ab", []byte("c"))
	b := KeyOf("a", []byte("bc"))
	if a == b {
		t.Fatal("domain/body concatenation collision")
	}
	if KeyOf("d", []byte("x")) != KeyOf("d", []byte("x")) {
		t.Fatal("KeyOf is not deterministic")
	}
	if len(a.String()) != 64 || strings.ToLower(a.String()) != a.String() {
		t.Fatalf("key %q is not 64 lowercase hex chars", a)
	}
}

func TestStoreComputePersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("artifact")
	want := []byte(`{"v":1}`)
	computes := 0
	got, out, err := s.GetOrCompute(k, func() ([]byte, error) { computes++; return want, nil })
	if err != nil || out != Computed || !bytes.Equal(got, want) {
		t.Fatalf("first get: %q, %v, %v", got, out, err)
	}
	got, out, err = s.GetOrCompute(k, func() ([]byte, error) { computes++; return nil, errors.New("must not run") })
	if err != nil || out != Hit || !bytes.Equal(got, want) {
		t.Fatalf("second get: %q, %v, %v", got, out, err)
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}

	// A fresh Store over the same directory sees the artifact: the disk,
	// not process memory, is the durable cache.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, out, err = s2.GetOrCompute(k, func() ([]byte, error) { return nil, errors.New("must not run") })
	if err != nil || out != Hit || !bytes.Equal(got, want) {
		t.Fatalf("reopened get: %q, %v, %v", got, out, err)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Computes != 0 {
		t.Fatalf("reopened stats = %+v, want 1 disk hit, 0 computes", st)
	}
}

func TestStoreSingleflightDedupe(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("shared")
	var computes atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	const callers = 16
	outs := make([]Outcome, callers)
	for i := range outs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, out, err := s.GetOrCompute(k, func() ([]byte, error) {
				computes.Add(1)
				<-release
				return []byte("x"), nil
			})
			if err != nil || string(data) != "x" {
				t.Errorf("caller %d: %q, %v", i, data, err)
			}
			outs[i] = out
		}()
	}
	for s.Stats().Computes == 0 {
	} // wait for a leader to start
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	leaders, joiners := 0, 0
	for _, o := range outs {
		switch o {
		case Computed:
			leaders++
		case Joined:
			joiners++
		}
	}
	if leaders != 1 || joiners != callers-1 {
		t.Fatalf("outcomes: %d leaders, %d joiners, want 1/%d", leaders, joiners, callers-1)
	}
	st := s.Stats()
	if st.Computes != 1 || st.Joins != callers-1 || st.JoinErrs != 0 {
		t.Fatalf("stats = %+v, want 1 compute, %d joins", st, callers-1)
	}
}

func TestStoreErrorsAreNotCached(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("flaky")
	boom := errors.New("boom")
	if _, _, err := s.GetOrCompute(k, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("failing compute: err = %v, want boom", err)
	}
	got, out, err := s.GetOrCompute(k, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || out != Computed || string(got) != "ok" {
		t.Fatalf("retry: %q, %v, %v", got, out, err)
	}
	st := s.Stats()
	if st.Computes != 2 || st.ComputeErrs != 1 {
		t.Fatalf("stats = %+v, want 2 computes, 1 compute_err", st)
	}
}

// TestStoreCrashMidWrite is the crash-safety contract: a writer that dies
// after writing its temporary file but before the rename leaves no visible
// artifact, a reopened store sweeps the debris, and recompute repairs the
// entry.
func TestStoreCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("crash")
	crash := errors.New("simulated crash before rename")
	s.WriteFault = func(string) error { return crash }
	if _, _, err := s.GetOrCompute(k, func() ([]byte, error) { return []byte("partial"), nil }); !errors.Is(err, crash) {
		t.Fatalf("faulted write: err = %v, want crash", err)
	}
	if st := s.Stats(); st.WriteErrs != 1 {
		t.Fatalf("stats = %+v, want 1 write_err", st)
	}

	// No partial artifact is visible: Get misses, and the only file on
	// disk is the orphaned temporary.
	if _, ok, err := s.Get(k); err != nil || ok {
		t.Fatalf("after crash: Get = (ok=%v, err=%v), want miss", ok, err)
	}
	if n, err := s.Len(); err != nil || n != 0 {
		t.Fatalf("after crash: %d visible artifacts (err %v), want 0", n, err)
	}
	tmps := countTmpFiles(t, dir)
	if tmps != 1 {
		t.Fatalf("after crash: %d temp files, want 1", tmps)
	}

	// Reopen: the sweep removes the debris...
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.SweptTmp != 1 {
		t.Fatalf("reopened stats = %+v, want 1 swept tmp", st)
	}
	if countTmpFiles(t, dir) != 0 {
		t.Fatal("sweep left temp files behind")
	}
	// ...and recompute repairs the entry.
	got, out, err := s2.GetOrCompute(k, func() ([]byte, error) { return []byte("repaired"), nil })
	if err != nil || out != Computed || string(got) != "repaired" {
		t.Fatalf("repair: %q, %v, %v", got, out, err)
	}
	if got, ok, _ := s2.Get(k); !ok || string(got) != "repaired" {
		t.Fatalf("after repair: Get = (%q, %v), want repaired artifact", got, ok)
	}
}

func countTmpFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.Contains(d.Name(), tmpPattern) {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestStoreDistinctKeysComputeConcurrently(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Key a's compute blocks until key b's compute has started: this only
	// terminates if distinct keys do not serialize on one lock.
	bStarted := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.GetOrCompute(testKey("a"), func() ([]byte, error) {
			<-bStarted
			return []byte("a"), nil
		})
	}()
	go func() {
		defer wg.Done()
		s.GetOrCompute(testKey("b"), func() ([]byte, error) {
			close(bStarted)
			return []byte("b"), nil
		})
	}()
	wg.Wait()
}

func TestOpenRejectsUnusableDir(t *testing.T) {
	f := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(f, []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(f); err == nil {
		t.Fatal("Open over a plain file succeeded")
	}
}

func TestMemoComputeOnceAndErrorRetry(t *testing.T) {
	var m Memo[string, int]
	computes := 0
	v, err := m.Do("k", func() (int, error) { computes++; return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("first Do: %d, %v", v, err)
	}
	v, err = m.Do("k", func() (int, error) { computes++; return -1, nil })
	if err != nil || v != 7 || computes != 1 {
		t.Fatalf("cached Do: %d, %v (computes %d)", v, err, computes)
	}

	boom := errors.New("boom")
	if _, err := m.Do("e", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("error Do: %v", err)
	}
	if v, err := m.Do("e", func() (int, error) { return 3, nil }); err != nil || v != 3 {
		t.Fatalf("retry Do: %d, %v", v, err)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestMemoSingleflight(t *testing.T) {
	var m Memo[int, string]
	var computes atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Do(1, func() (string, error) {
				computes.Add(1)
				once.Do(func() { close(started) })
				<-release
				return "v", nil
			})
			if err != nil || v != "v" {
				t.Errorf("Do: %q, %v", v, err)
			}
		}()
	}
	<-started
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
}

func TestMemoChainedKeysDoNotDeadlock(t *testing.T) {
	// The service pipeline chains memos: a clustering computes from a
	// trace, which computes from a marker set, which computes from a
	// graph. No lock may be held across a compute call.
	var m Memo[string, int]
	v, err := m.Do("outer", func() (int, error) {
		return m.Do("inner", func() (int, error) { return 1, nil })
	})
	if err != nil || v != 1 {
		t.Fatalf("chained Do: %d, %v", v, err)
	}
}

func BenchmarkStoreHit(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	k := testKey("bench")
	payload := bytes.Repeat([]byte("x"), 4096)
	if _, _, err := s.GetOrCompute(k, func() ([]byte, error) { return payload, nil }); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, out, err := s.GetOrCompute(k, func() ([]byte, error) { return nil, fmt.Errorf("miss") }); err != nil || out != Hit {
			b.Fatal(out, err)
		}
	}
}
