// Package store provides the persistence layer of the phased service: a
// content-addressed, disk-backed artifact store with in-process
// singleflight.
//
// Artifacts are immutable byte blobs addressed by a SHA-256 Key computed
// over the canonical encoding of the request that produces them — the same
// request always names the same artifact, so identical work dedupes across
// requests, across process restarts, and across processes sharing a
// directory. Writes are crash-safe: a blob is written to a temporary file
// in the same directory, synced, and atomically renamed into place, so a
// reader can never observe a partial artifact; leftover temporaries from a
// crashed writer are swept on Open.
//
// GetOrCompute extends the singleflight cell pattern of
// internal/experiments (see cell.go there) from an in-memory
// compute-once cache to a disk-backed one: concurrent requesters of the
// same key block on one leader's disk-check-then-compute flight instead of
// computing redundantly, and — exactly like the cell — errors are not
// cached, so the flight of a failed compute is forgotten and the next
// caller retries from scratch. Unlike the cell, a finished flight is
// dropped from memory: the disk is the durable cache, and process memory
// holds only in-progress work.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"phasemark/internal/obs"
)

// Request-scoped span names GetOrComputeCtx attaches to the caller's
// obs.RequestSpan (when the context carries one). Get/Compute/Write are
// the flight leader's sequential phases; Join is a non-leader's wait on
// an in-flight computation. Exported so telemetry consumers (the stress
// suite's consistency checks) reference the same strings the store emits.
const (
	SpanGet     = "store.get"
	SpanCompute = "store.compute"
	SpanWrite   = "store.write"
	SpanJoin    = "store.join"
)

// Process-wide store metrics, mirrored from every store's local stats so
// cache behavior is visible on the /metrics endpoint. A "disk_hit" found
// the artifact on disk, a "compute" ran the producer, a "join" waited on
// another caller's in-flight work; see Stats for the full taxonomy.
var (
	obsDiskHits    = obs.NewCounter("store.disk_hit")
	obsComputes    = obs.NewCounter("store.compute")
	obsJoins       = obs.NewCounter("store.join")
	obsJoinErrs    = obs.NewCounter("store.join_err")
	obsComputeErrs = obs.NewCounter("store.compute_err")
	obsWriteErrs   = obs.NewCounter("store.write_err")
	obsSweeps      = obs.NewCounter("store.swept_tmp")
	obsBytesIn     = obs.NewCounter("store.bytes_written")
	obsBytesOut    = obs.NewCounter("store.bytes_read")
)

// Key is a content address: SHA-256 over a domain-separated canonical
// request encoding.
type Key [sha256.Size]byte

// KeyOf derives the key for one canonical request encoding. The domain
// (e.g. the endpoint path plus a format version) is length-prefixed before
// hashing so distinct (domain, body) pairs can never collide by
// concatenation.
func KeyOf(domain string, canonical []byte) Key {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(domain)))
	h.Write(n[:])
	h.Write([]byte(domain))
	h.Write(canonical)
	var k Key
	h.Sum(k[:0])
	return k
}

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Short renders the key's first four bytes as hex — the span/log label
// form, unambiguous enough for debugging without 64-character names.
func (k Key) Short() string { return hex.EncodeToString(k[:4]) }

// Outcome reports how GetOrCompute satisfied a request.
type Outcome int

// GetOrCompute outcomes.
const (
	// Hit: the artifact was already on disk.
	Hit Outcome = iota
	// Computed: this caller led the flight and ran the producer.
	Computed
	// Joined: another caller's in-flight computation was awaited.
	Joined
)

var outcomeNames = [...]string{"hit", "computed", "joined"}

// String names the outcome (stable; used in HTTP cache headers).
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Stats is a point-in-time read of one store's access counts.
type Stats struct {
	DiskHits    uint64 // artifact found on disk (no compute)
	Computes    uint64 // producer ran (leader, artifact absent)
	Joins       uint64 // waited on an in-flight compute that succeeded
	JoinErrs    uint64 // waited on an in-flight compute whose leader failed
	ComputeErrs uint64 // computes whose producer returned an error
	WriteErrs   uint64 // computes whose artifact failed to persist
	SweptTmp    uint64 // leftover temp files removed by Open
}

// flight is one in-progress disk-check-then-compute, shared by every
// concurrent requester of its key. val/err/outcome are written exactly
// once before ch is closed.
type flight struct {
	ch      chan struct{}
	val     []byte
	outcome Outcome
	err     error
}

// Store is a content-addressed artifact directory. It is safe for
// concurrent use by multiple goroutines; multiple processes may share a
// directory (atomic renames keep visible artifacts whole), though the
// singleflight dedupe is per-process.
type Store struct {
	dir string

	mu       sync.Mutex
	inflight map[Key]*flight

	diskHits, computes, joins, joinErrs, computeErrs, writeErrs, sweptTmp atomic.Uint64

	// WriteFault, when non-nil, is called after the temporary file is
	// written but before it is renamed into place — the crash-injection
	// point for tests. A returned error aborts the write, leaving the
	// temporary behind exactly as a crashed process would.
	WriteFault func(tmpPath string) error
}

// tmpPattern marks in-progress writes; Open sweeps anything matching it.
const tmpPattern = ".tmp-"

// Open creates (if needed) the store directory and sweeps temporary files
// left behind by crashed writers. The sweep makes crash recovery explicit:
// a partial write is garbage to collect, never an artifact to serve.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, inflight: map[Key]*flight{}}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.Contains(d.Name(), tmpPattern) {
			if rerr := os.Remove(path); rerr != nil {
				return rerr
			}
			s.sweptTmp.Add(1)
			obsSweeps.Inc()
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: sweeping %s: %w", dir, err)
	}
	return s, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path shards artifacts by the first key byte so one directory never holds
// the whole corpus.
func (s *Store) path(k Key) string {
	hx := k.String()
	return filepath.Join(s.dir, hx[:2], hx[2:])
}

// Get reads the artifact for k from disk, reporting whether it exists.
func (s *Store) Get(k Key) ([]byte, bool, error) {
	data, err := os.ReadFile(s.path(k))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: read %s: %w", k, err)
	}
	obsBytesOut.Add(uint64(len(data)))
	return data, true, nil
}

// GetOrCompute returns the artifact for k, computing and persisting it if
// absent. Concurrent callers with the same key share one flight: the
// leader checks the disk and (on miss) runs compute; everyone else blocks
// on the result. A compute or persist error is returned to the leader and
// every joiner but is not cached — the flight is forgotten and the next
// caller starts fresh, so a transient failure cannot poison the key.
//
// compute runs with no store lock held, so a producer may freely issue
// GetOrCompute for *other* keys (pipeline stages chain artifacts);
// re-entering the same key from its own producer deadlocks, exactly like
// the experiments cell it generalizes.
func (s *Store) GetOrCompute(k Key, compute func() ([]byte, error)) ([]byte, Outcome, error) {
	return s.GetOrComputeCtx(context.Background(), k,
		func(context.Context) ([]byte, error) { return compute() })
}

// GetOrComputeCtx is GetOrCompute with request-scoped telemetry: when ctx
// carries an obs.RequestSpan, the flight's phases attach to it as child
// spans (SpanGet / SpanCompute / SpanWrite for the leader, SpanJoin for a
// joiner), and compute receives a context whose span is the compute span,
// so pipeline stages chain their own sub-spans under it. The caching and
// error semantics are exactly GetOrCompute's.
func (s *Store) GetOrComputeCtx(ctx context.Context, k Key, compute func(context.Context) ([]byte, error)) ([]byte, Outcome, error) {
	s.mu.Lock()
	if f := s.inflight[k]; f != nil {
		s.mu.Unlock()
		sp := obs.SpanFromContext(ctx).Child(SpanJoin, k.Short())
		<-f.ch
		sp.End()
		if f.err != nil {
			s.joinErrs.Add(1)
			obsJoinErrs.Inc()
		} else {
			s.joins.Add(1)
			obsJoins.Inc()
		}
		return f.val, Joined, f.err
	}
	f := &flight{ch: make(chan struct{})}
	s.inflight[k] = f
	s.mu.Unlock()

	f.val, f.outcome, f.err = s.lead(ctx, k, compute)

	s.mu.Lock()
	delete(s.inflight, k)
	s.mu.Unlock()
	close(f.ch)
	return f.val, f.outcome, f.err
}

// lead is the flight leader's work: disk check, then compute + persist,
// each phase a child span of the request (when ctx carries one).
func (s *Store) lead(ctx context.Context, k Key, compute func(context.Context) ([]byte, error)) ([]byte, Outcome, error) {
	parent := obs.SpanFromContext(ctx)
	gsp := parent.Child(SpanGet, k.Short())
	data, ok, err := s.Get(k)
	if err != nil {
		gsp.End()
		return nil, Hit, err
	}
	if ok {
		gsp.SetTag("cache", Hit.String())
		gsp.End()
		s.diskHits.Add(1)
		obsDiskHits.Inc()
		return data, Hit, nil
	}
	gsp.SetTag("cache", "miss")
	gsp.End()
	s.computes.Add(1)
	obsComputes.Inc()
	csp := parent.Child(SpanCompute, k.Short())
	data, err = compute(obs.ContextWithSpan(ctx, csp))
	csp.End()
	if err != nil {
		s.computeErrs.Add(1)
		obsComputeErrs.Inc()
		return nil, Computed, err
	}
	wsp := parent.Child(SpanWrite, k.Short())
	err = s.put(k, data)
	wsp.End()
	if err != nil {
		s.writeErrs.Add(1)
		obsWriteErrs.Inc()
		return nil, Computed, err
	}
	return data, Computed, nil
}

// put persists one artifact crash-safely: temp file in the destination
// directory, write, sync, rename. Rename is atomic on POSIX filesystems,
// so concurrent writers of the same key (two processes sharing the
// directory) race benignly — the content is identical by construction.
func (s *Store) put(k Key, data []byte) error {
	dst := s.path(k)
	dir := filepath.Dir(dst)
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return fmt.Errorf("store: write %s: %w", k, err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(dst)+tmpPattern+"*")
	if err != nil {
		return fmt.Errorf("store: write %s: %w", k, err)
	}
	// On any failure below the temporary is left for Open's sweep — never
	// half-renamed into the visible namespace.
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", k, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync %s: %w", k, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", k, err)
	}
	if s.WriteFault != nil {
		if err := s.WriteFault(tmp.Name()); err != nil {
			return fmt.Errorf("store: write %s: %w", k, err)
		}
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("store: publish %s: %w", k, err)
	}
	obsBytesIn.Add(uint64(len(data)))
	return nil
}

// Len counts the artifacts currently visible in the store (a directory
// walk; intended for tests and stress reporting, not hot paths).
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if !strings.Contains(d.Name(), tmpPattern) {
			n++
		}
		return nil
	})
	return n, err
}

// Stats reads the store's access counts. Counts are loaded individually; a
// snapshot taken during concurrent flights is consistent per counter, not
// across counters.
func (s *Store) Stats() Stats {
	return Stats{
		DiskHits:    s.diskHits.Load(),
		Computes:    s.computes.Load(),
		Joins:       s.joins.Load(),
		JoinErrs:    s.joinErrs.Load(),
		ComputeErrs: s.computeErrs.Load(),
		WriteErrs:   s.writeErrs.Load(),
		SweptTmp:    s.sweptTmp.Load(),
	}
}
