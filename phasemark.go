// Package phasemark selects software phase markers with code structure
// analysis, reproducing Lau, Perelman & Calder (CGO 2006).
//
// A software phase marker is an instrumentable location in a binary — a
// call site, a loop entry, or a loop back edge — whose execution reliably
// signals the start of an interval of repeating, homogeneous program
// behavior. Markers are found by profiling one execution into a
// hierarchical call-loop graph (procedure and loop head/body nodes whose
// edges carry count / mean / max / standard deviation of the hierarchical
// dynamic instruction count per traversal) and running a fast two-pass
// selection algorithm over the graph. Once selected, markers detect phase
// changes on any input with no hardware support, and can be mapped across
// different compilations of the same source.
//
// The typical pipeline:
//
//	prog, _ := phasemark.CompileSource(src, false) // or bring your own IR
//	graph, _ := phasemark.Profile(prog, trainArgs...)
//	markers := phasemark.Select(graph, phasemark.SelectOptions{ILower: 100_000})
//	result, _ := phasemark.Segment(prog, markers, refArgs...)
//	cov := phasemark.PhaseCoV(result.Intervals, phasemark.IntervalPhase, phasemark.CPIMetric)
//
// Subsystems live in internal packages: internal/core (graph + selection),
// internal/minivm (the register-machine IR and interpreter standing in for
// ATOM-instrumented binaries), internal/compile + internal/lang (the mini
// language the synthetic SPEC-analog workloads are written in),
// internal/trace (interval segmentation and metrics), internal/simpoint
// (weighted k-means + BIC), internal/uarch (cache/branch timing model),
// internal/reuse (the reuse-distance marker baseline), internal/adapt
// (adaptive cache reconfiguration), internal/crossbin (marker mapping
// across compilations), and internal/experiments (one harness per paper
// figure).
package phasemark

import (
	"phasemark/internal/compile"
	"phasemark/internal/core"
	"phasemark/internal/crossbin"
	"phasemark/internal/minivm"
	"phasemark/internal/trace"
	"phasemark/internal/uarch"
)

// Re-exported core types: the call-loop graph and marker selection.
type (
	// Graph is the hierarchical call-loop graph built from a profiled run.
	Graph = core.Graph
	// Node is a graph node (procedure or loop, head or body).
	Node = core.Node
	// Edge is a graph edge with hierarchical instruction-count statistics.
	Edge = core.Edge
	// EdgeKey stably names an edge (and thus a marker location) in a binary.
	EdgeKey = core.EdgeKey
	// Marker is one selected software phase marker.
	Marker = core.Marker
	// MarkerSet is the result of marker selection.
	MarkerSet = core.MarkerSet
	// SelectOptions configures the selection algorithm (ILower, MaxLimit,
	// ProcsOnly, ...).
	SelectOptions = core.SelectOptions
	// Program is the executable IR (the "binary" being analyzed).
	Program = minivm.Program
	// Result is a segmented, measured execution.
	Result = trace.Result
	// Interval is one slice of execution with its BBV and timing counters.
	Interval = trace.Interval
)

// Metric helpers re-exported from internal/trace.
var (
	// CPIMetric extracts cycles-per-instruction from an interval.
	CPIMetric = trace.CPIMetric
	// DL1MissMetric extracts the data-cache miss rate from an interval.
	DL1MissMetric = trace.DL1MissMetric
	// IntervalPhase maps an interval to the marker-assigned phase ID.
	IntervalPhase = trace.IntervalPhase
)

// PhaseCoV measures the homogeneity of a phase classification: the
// instruction-weighted coefficient of variation of a metric within each
// phase, averaged across phases (paper §3.1). Lower is better.
func PhaseCoV(ivs []*Interval, phaseOf func(*Interval) int, metric trace.Metric) trace.PhaseCoVResult {
	return trace.PhaseCoV(ivs, phaseOf, metric)
}

// CompileSource compiles mini-language source text to an executable
// program; optimize selects the optimizing build (different basic-block
// structure, observably identical behavior).
func CompileSource(src string, optimize bool) (*Program, error) {
	return compile.CompileSource(src, compile.Options{Optimize: optimize})
}

// Profile executes prog on args and returns its call-loop graph — the
// paper's ATOM profiling step.
func Profile(prog *Program, args ...int64) (*Graph, error) {
	return core.ProfileRun(prog, args...)
}

// Select runs the two-pass marker selection algorithm (§5) on a profiled
// graph.
func Select(g *Graph, opts SelectOptions) *MarkerSet {
	return core.SelectMarkers(g, opts)
}

// Segment executes prog on args under the default timing model, cutting a
// variable-length interval at every marker firing, and returns the
// measured intervals (phase ID = the marker that began each interval).
func Segment(prog *Program, set *MarkerSet, args ...int64) (*Result, error) {
	return trace.Run(trace.Config{
		Prog:    prog,
		Args:    args,
		CPU:     uarch.DefaultConfig(),
		Markers: set,
	})
}

// SegmentFixed is Segment with fixed-length intervals (the prior-work
// baseline); phase IDs must be assigned afterwards (e.g. by clustering).
func SegmentFixed(prog *Program, length uint64, args ...int64) (*Result, error) {
	return trace.Run(trace.Config{
		Prog:     prog,
		Args:     args,
		CPU:      uarch.DefaultConfig(),
		FixedLen: length,
	})
}

// MapMarkers rebinds markers selected on one compilation of a source
// program to another compilation, using source-position debug info
// (paper §6.2.1). It returns the mapped set and how many markers mapped.
func MapMarkers(set *MarkerSet, from, to *Program) (*MarkerSet, int, error) {
	mapped, rep, err := crossbin.MapMarkers(set, from, to)
	if err != nil {
		return nil, 0, err
	}
	return mapped, rep.Mapped, nil
}

// MarkerTrace runs prog with the marker set and returns the ordered
// sequence of marker firings — comparable across compilations of the same
// source on the same input.
func MarkerTrace(prog *Program, set *MarkerSet, args ...int64) ([]int, error) {
	return crossbin.Trace(prog, set, args...)
}
