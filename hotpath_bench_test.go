package phasemark_test

import (
	"testing"

	"phasemark/internal/hotbench"
)

// BenchmarkHotpath runs the shared hot-path stages (internal/hotbench) —
// execute/observe plus the project/cluster analysis stages — as
// sub-benchmarks. CI's bench-regression job runs
// exactly this suite (`-bench '^BenchmarkHotpath$'`) on the PR head and
// its merge base and fails on statistically significant slowdowns; `spexp
// -bench` snapshots the same stages into BENCH_hotpath.json.
func BenchmarkHotpath(b *testing.B) {
	for _, st := range hotbench.Stages() {
		b.Run(st.Name, func(b *testing.B) {
			run, err := st.New()
			if err != nil {
				b.Fatal(err)
			}
			var work uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w, err := run()
				if err != nil {
					b.Fatal(err)
				}
				work = w
			}
			b.ReportMetric(float64(work)*float64(b.N)/b.Elapsed().Seconds()/1e6, st.Unit)
		})
	}
}
