module phasemark

go 1.22
