package phasemark_test

import (
	"testing"

	"phasemark"
)

const demoSrc = `
array buf[16384];
proc phaseA(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + buf[(i * 5) & 16383]; }
	return s;
}
proc phaseB(n) {
	var s = 1;
	for (var i = 0; i < n; i = i + 1) { s = s + (s >> 3) + i; }
	return s;
}
proc main(reps, n) {
	var s = 0;
	for (var r = 0; r < reps; r = r + 1) { s = s + phaseA(n) + phaseB(n); }
	out(s);
	return s;
}
`

func TestEndToEndPipeline(t *testing.T) {
	prog, err := phasemark.CompileSource(demoSrc, false)
	if err != nil {
		t.Fatal(err)
	}
	graph, err := phasemark.Profile(prog, 6, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(graph.Nodes) == 0 || len(graph.Edges) == 0 {
		t.Fatal("empty graph")
	}
	set := phasemark.Select(graph, phasemark.SelectOptions{ILower: 50_000})
	if len(set.Markers) == 0 {
		t.Fatal("no markers selected")
	}
	// Cross-input application.
	res, err := phasemark.Segment(prog, set, 12, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) < 3 {
		t.Fatalf("only %d intervals", len(res.Intervals))
	}
	cov := phasemark.PhaseCoV(res.Intervals, phasemark.IntervalPhase, phasemark.CPIMetric)
	fixed, err := phasemark.SegmentFixed(prog, 50_000, 12, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	whole := phasemark.PhaseCoV(fixed.Intervals,
		func(*phasemark.Interval) int { return 0 }, phasemark.CPIMetric)
	if cov.CoV >= whole.CoV {
		t.Fatalf("marker phases CoV %v not below whole-program %v", cov.CoV, whole.CoV)
	}
}

func TestCrossBinaryFacade(t *testing.T) {
	plain, err := phasemark.CompileSource(demoSrc, false)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := phasemark.CompileSource(demoSrc, true)
	if err != nil {
		t.Fatal(err)
	}
	graph, err := phasemark.Profile(plain, 4, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	set := phasemark.Select(graph, phasemark.SelectOptions{ILower: 20_000})
	mapped, n, err := phasemark.MapMarkers(set, plain, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(set.Markers) {
		t.Fatalf("mapped %d of %d markers", n, len(set.Markers))
	}
	t0, err := phasemark.MarkerTrace(plain, set, 4, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := phasemark.MarkerTrace(opt, mapped, 4, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(t0) == 0 || len(t0) != len(t1) {
		t.Fatalf("trace lengths: %d vs %d", len(t0), len(t1))
	}
	for i := range t0 {
		if t0[i] != t1[i] {
			t.Fatalf("traces differ at %d", i)
		}
	}
}
