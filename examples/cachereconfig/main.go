// Cache reconfiguration: use software phase markers to drive an adaptive
// data cache (32–256 KB) exactly as in the paper's §6.1. Markers are
// selected on the train input; on the ref input each phase explores
// configurations for two intervals and then locks the smallest cache that
// does not increase its miss count.
package main

import (
	"fmt"
	"log"

	"phasemark"
	"phasemark/internal/adapt"
	"phasemark/internal/workloads"
)

func main() {
	w, err := workloads.ByName("applu")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := w.Compile(false)
	if err != nil {
		log.Fatal(err)
	}

	graph, err := phasemark.Profile(prog, w.Train...)
	if err != nil {
		log.Fatal(err)
	}
	set := phasemark.Select(graph, phasemark.SelectOptions{ILower: 100_000})
	fmt.Printf("applu: %d markers selected on the train input\n", len(set.Markers))

	// Run ref with all eight cache configurations simulated in parallel,
	// cutting intervals at marker firings.
	res, err := adapt.Run(prog, w.Ref, adapt.Source{SPM: set})
	if err != nil {
		log.Fatal(err)
	}
	policy := adapt.Evaluate(res, nil)
	fixed := adapt.BestFixed(res)

	fmt.Printf("\nphase-marker adaptive policy:\n")
	fmt.Printf("  phases seen:        %d\n", policy.Phases)
	fmt.Printf("  average cache size: %.1f KB\n", policy.AvgCacheKB)
	fmt.Printf("  miss rate:          %.4f%% (full 256KB cache: %.4f%%)\n",
		100*policy.MissRate, 100*policy.BaseRate)
	fmt.Printf("\nbest fixed configuration:\n")
	fmt.Printf("  size:               %.0f KB at %.4f%% misses\n",
		fixed.AvgCacheKB, 100*fixed.MissRate)
	fmt.Printf("\nthe adaptive cache runs %.1fx smaller on average with no miss-rate increase\n",
		fixed.AvgCacheKB/policy.AvgCacheKB)

	// Show the per-phase choices that the policy locked in.
	fmt.Printf("\nfirst intervals (phase -> per-config misses in thousands):\n")
	for i, iv := range res.Intervals {
		if i >= 8 {
			break
		}
		fmt.Printf("  phase %2d  %8d instrs  misses:", iv.Phase, iv.Instrs)
		for c := 0; c < adapt.NumConfigs; c++ {
			fmt.Printf(" %dKB=%d", adapt.SizeKB(c), iv.Misses[c]/1000)
		}
		fmt.Println()
	}
}
