// Phase prediction: markers turn phase tracking into a tiny discrete
// sequence problem. The paper positions markers as run-time phase-change
// signals (§5.3); its companion work predicts the *next* phase at each
// transition. Because markers are code locations, their firing sequence is
// highly structured, and a small Markov predictor knows the upcoming phase
// before it starts — in time to prefetch, reconfigure, or re-optimize.
package main

import (
	"fmt"
	"log"

	"phasemark"
	"phasemark/internal/core"
	"phasemark/internal/workloads"
)

func main() {
	for _, name := range []string{"gzip", "mgrid", "gcc"} {
		w, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := w.Compile(false)
		if err != nil {
			log.Fatal(err)
		}
		graph, err := phasemark.Profile(prog, w.Train...)
		if err != nil {
			log.Fatal(err)
		}
		set := phasemark.Select(graph, phasemark.SelectOptions{ILower: 100_000})
		trace, err := phasemark.MarkerTrace(prog, set, w.Ref...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %3d markers, %4d firings on ref:", name, len(set.Markers), len(trace))
		for _, order := range []int{1, 2, 3} {
			acc := core.EvaluatePrediction(trace, order)
			fmt.Printf("  order-%d %5.1f%%", order, 100*acc)
		}
		fmt.Println()
	}
	fmt.Println("\nnext-phase prediction accuracy from marker sequences alone —")
	fmt.Println("no hardware counters, no sampling, just the inserted markers firing.")
}
