// SimPoint with variable-length intervals: select limit-variant phase
// markers, cut the execution into VLIs at marker firings, cluster the
// interval BBVs with weighted k-means + BIC, pick one simulation point per
// cluster, and estimate whole-program CPI from the points alone (§5.2,
// Figures 11/12).
package main

import (
	"fmt"
	"log"

	"phasemark"
	"phasemark/internal/simpoint"
	"phasemark/internal/workloads"
)

func main() {
	w, err := workloads.ByName("gzip")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := w.Compile(false)
	if err != nil {
		log.Fatal(err)
	}

	// The limit variant bounds interval sizes to [100k, 2M] instructions
	// so simulation points stay cheap to simulate in detail.
	graph, err := phasemark.Profile(prog, w.Ref...)
	if err != nil {
		log.Fatal(err)
	}
	set := phasemark.Select(graph, phasemark.SelectOptions{
		ILower:   100_000,
		MaxLimit: 2_000_000,
	})
	res, err := phasemark.Segment(prog, set, w.Ref...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gzip ref: %d instructions cut into %d variable-length intervals\n",
		res.Instructions, len(res.Intervals))

	// SimPoint 3.0-style VLI clustering: interval weights = instruction
	// counts; BIC picks the number of phases.
	cl := simpoint.Classify(res, simpoint.Options{KMax: 30, Seed: 7})
	pts := simpoint.PickPoints(cl, cl.Points())
	fmt.Printf("BIC selected k=%d clusters\n\n", cl.K)

	for _, cov := range []float64{0.95, 0.99, 1.0} {
		kept := pts
		if cov < 1 {
			kept = simpoint.Filter(pts, cov)
		}
		est := simpoint.Evaluate(kept, res.Intervals, res.TrueCPI(), cl.K)
		fmt.Printf("coverage %3.0f%%: %2d simulation points, %8d instrs to simulate, "+
			"estimated CPI %.4f vs true %.4f (%.2f%% error)\n",
			100*cov, len(kept), est.SimulatedIns, est.EstimatedCPI, est.TrueCPI,
			100*est.RelativeError)
	}

	fmt.Println("\nsimulation points (interval, phase marker, weight):")
	for _, p := range pts {
		iv := res.Intervals[p.Interval]
		fmt.Printf("  cluster %2d -> interval %4d (phase %2d, %8d instrs) weight %.3f\n",
			p.Cluster, p.Interval, iv.PhaseID, iv.Len(), p.Weight)
	}
}
