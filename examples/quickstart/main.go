// Quickstart: compile a small two-phase program, profile it into a
// call-loop graph, select software phase markers, and segment a run on a
// different input into homogeneous variable-length intervals.
package main

import (
	"fmt"
	"log"

	"phasemark"
)

const src = `
array big[65536];
array small[2048];

// Phase A: streaming scan over a large array (cache-hostile).
proc scanBig(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		s = s + big[i & 65535];
		big[(i * 7) & 65535] = s;
	}
	return s;
}

// Phase B: tight compute over a small table (cache-friendly).
proc mixSmall(n) {
	var s = 1;
	for (var i = 0; i < n; i = i + 1) {
		small[i & 2047] = small[i & 2047] + s;
		s = s + (small[i & 2047] >> 3);
	}
	return s;
}

proc main(reps, n) {
	var chk = 0;
	for (var r = 0; r < reps; r = r + 1) {
		chk = chk + scanBig(n);
		chk = chk + mixSmall(n / 2);
	}
	out(chk);
	return 0;
}
`

func main() {
	prog, err := phasemark.CompileSource(src, false)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Profile a training run into the hierarchical call-loop graph.
	graph, err := phasemark.Profile(prog, 5, 50_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("call-loop graph: %d nodes, %d edges\n\n", len(graph.Nodes), len(graph.Edges))

	// 2. Select markers: edges with >= 100k instructions per traversal and
	//    low variation in hierarchical instruction count.
	set := phasemark.Select(graph, phasemark.SelectOptions{ILower: 100_000})
	fmt.Printf("selected %d software phase markers:\n", len(set.Markers))
	for i, m := range set.Markers {
		fmt.Printf("  M%d %-44s avg %.0f instrs, CoV %.4f\n", i, m.Key, m.AvgLen, m.CoV)
	}

	// 3. Apply the markers to a *different* input — phase detection needs
	//    no hardware support and no re-profiling.
	res, err := phasemark.Segment(prog, set, 12, 80_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nref run: %d instructions in %d intervals\n", res.Instructions, len(res.Intervals))
	for _, iv := range res.Intervals {
		if iv.Len() < 1000 {
			continue // skip marker-chain connector slivers
		}
		fmt.Printf("  interval %2d  phase %2d  %9d instrs  CPI %.3f  DL1 miss %5.2f%%\n",
			iv.Index, iv.PhaseID, iv.Len(), iv.CPI(), 100*iv.Perf.L1MissRate())
	}

	cov := phasemark.PhaseCoV(res.Intervals, phasemark.IntervalPhase, phasemark.CPIMetric)
	fmt.Printf("\nper-phase CoV of CPI: %.2f%% across %d phases (whole-program CoV would mix ~1.0 and ~1.6 CPI phases)\n",
		100*cov.CoV, cov.Phases)
}
