// Cross-binary phase markers (§6.2.1): select markers on an unoptimized
// build, map them through source-position debug info to an optimized build
// AND to a stack-machine build (a different instruction set) of the same
// source, and verify all three binaries fire the exact same marker
// sequence on the same input — so simulation points defined by markers can
// be reused across compilations and ISAs (the paper's Alpha→x86 scenario).
package main

import (
	"fmt"
	"log"

	"phasemark"
	"phasemark/internal/compile"
	"phasemark/internal/lang"
	"phasemark/internal/workloads"
)

func main() {
	w, err := workloads.ByName("bzip2")
	if err != nil {
		log.Fatal(err)
	}
	plain, err := w.Compile(false)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := w.Compile(true)
	if err != nil {
		log.Fatal(err)
	}
	f, err := lang.Parse(w.Source)
	if err != nil {
		log.Fatal(err)
	}
	stack, err := compile.Compile(f, compile.Options{Stack: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bzip2: -O0 has %d static blocks, optimized %d, stack ISA %d\n",
		plain.NumBlocks, opt.NumBlocks, stack.NumBlocks)

	// Select markers on the -O0 binary using the train input.
	graph, err := phasemark.Profile(plain, w.Train...)
	if err != nil {
		log.Fatal(err)
	}
	set := phasemark.Select(graph, phasemark.SelectOptions{ILower: 100_000})

	// Map each marker to the optimized binary: procedures by name, loops
	// and call sites by source line/column.
	mapped, n, err := phasemark.MapMarkers(set, plain, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped %d/%d markers into the optimized binary\n", n, len(set.Markers))

	mappedStack, nStack, err := phasemark.MapMarkers(set, plain, stack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped %d/%d markers into the stack-ISA binary\n", nStack, len(set.Markers))

	// Run all three binaries on the ref input and compare marker traces.
	t0, err := phasemark.MarkerTrace(plain, set, w.Ref...)
	if err != nil {
		log.Fatal(err)
	}
	t1, err := phasemark.MarkerTrace(opt, mapped, w.Ref...)
	if err != nil {
		log.Fatal(err)
	}
	t2, err := phasemark.MarkerTrace(stack, mappedStack, w.Ref...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-O0 fired %d markers, optimized %d, stack ISA %d\n", len(t0), len(t1), len(t2))

	same := len(t0) == len(t1) && len(t0) == len(t2)
	for i := 0; same && i < len(t0); i++ {
		same = t0[i] == t1[i] && t0[i] == t2[i]
	}
	if same {
		fmt.Println("marker traces are IDENTICAL across all three binaries:")
		fmt.Println("simulation points chosen on one identify the same execution")
		fmt.Println("regions in the others — including across instruction sets")
	} else {
		fmt.Println("marker traces DIVERGED (unexpected)")
	}

	show := len(t0)
	if show > 16 {
		show = 16
	}
	fmt.Printf("first firings: %v ...\n", t0[:show])
}
